package scream

import (
	"math"
	"testing"
)

func flowTestMesh(t *testing.T) *Mesh {
	t.Helper()
	m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func flowTestArrivals(t *testing.T, m *Mesh, rate float64) []Arrival {
	t.Helper()
	isGW := make(map[int]bool)
	for _, g := range m.Gateways() {
		isGW[g] = true
	}
	arrivals := make([]Arrival, m.NumNodes())
	for u := range arrivals {
		if isGW[u] {
			continue
		}
		a, err := NewPoisson(rate)
		if err != nil {
			t.Fatal(err)
		}
		arrivals[u] = a
	}
	return arrivals
}

func TestRunFlow(t *testing.T) {
	m := flowTestMesh(t)
	frame, err := m.FlowFrameTime(Timing{})
	if err != nil {
		t.Fatal(err)
	}
	if frame <= 0 {
		t.Fatalf("frame time %v", frame)
	}
	rate := 0.5 / frame.Seconds()
	for _, sched := range []FlowScheduler{FlowGreedy, FlowFDD, FlowPDD, FlowTDMA} {
		res, err := RunFlow(m, FlowOptions{
			Scheduler:      sched,
			P:              0.8,
			Arrivals:       flowTestArrivals(t, m, rate),
			Horizon:        300 * Millisecond,
			Seed:           7,
			MaxService:     8,
			FramesPerEpoch: 8,
		})
		if err != nil {
			t.Fatalf("scheduler %d: %v", sched, err)
		}
		if res.Delivered == 0 {
			t.Errorf("scheduler %d delivered nothing (offered %d)", sched, res.Offered)
		}
		if got := res.Delivered + res.Dropped + res.FinalBacklog; got != res.Offered {
			t.Errorf("scheduler %d: conservation %d != offered %d", sched, got, res.Offered)
		}
	}
	if _, err := RunFlow(m, FlowOptions{Scheduler: 99, Arrivals: flowTestArrivals(t, m, rate), Horizon: Millisecond}); err == nil {
		t.Error("unknown scheduler should fail")
	}
}

// TestRunFlowDynamics drives every scheduler through the public dynamics
// API: churn plus waypoint mobility on a private clone — the mesh itself
// must come out of the run untouched.
func TestRunFlowDynamics(t *testing.T) {
	m := flowTestMesh(t)
	before := m.Network.Channel.RxPowerMW(0, 1)
	frame, err := m.FlowFrameTime(Timing{})
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.5 / frame.Seconds()
	for _, sched := range []FlowScheduler{FlowGreedy, FlowFDD, FlowPDD, FlowTDMA} {
		res, err := RunFlow(m, FlowOptions{
			Scheduler:      sched,
			P:              0.8,
			Arrivals:       flowTestArrivals(t, m, rate),
			Horizon:        400 * Millisecond,
			Seed:           7,
			MaxService:     8,
			FramesPerEpoch: 8,
			Dynamics: &DynamicsOptions{
				FailRate:     8,
				MeanDowntime: 40 * Millisecond,
				Mobility:     MobilityWaypoint,
				SpeedMps:     10,
				Pause:        20 * Millisecond,
				MoveInterval: 10 * Millisecond,
			},
		})
		if err != nil {
			t.Fatalf("scheduler %d: %v", sched, err)
		}
		if res.FailEvents == 0 || res.MoveEvents == 0 {
			t.Errorf("scheduler %d: dynamics inert (%d fail, %d move events)", sched, res.FailEvents, res.MoveEvents)
		}
		if res.Delivered == 0 {
			t.Errorf("scheduler %d delivered nothing under dynamics (offered %d)", sched, res.Offered)
		}
		if got := res.Delivered + res.Dropped + res.LostOnFailure + res.FinalBacklog; got != res.Offered {
			t.Errorf("scheduler %d: conservation %d != offered %d", sched, got, res.Offered)
		}
	}
	if got := m.Network.Channel.RxPowerMW(0, 1); got != before {
		t.Fatalf("RunFlow with dynamics mutated the mesh channel: %v -> %v", before, got)
	}
	if m.Network.IsDown(1) {
		t.Fatal("RunFlow with dynamics marked a mesh node down")
	}
	// Scripted bursts work through the public API too.
	res, err := RunFlow(m, FlowOptions{
		Arrivals:       flowTestArrivals(t, m, rate),
		Horizon:        300 * Millisecond,
		Seed:           3,
		MaxService:     8,
		FramesPerEpoch: 8,
		Dynamics: &DynamicsOptions{
			Script: []DynamicsEvent{{At: 100 * Millisecond, Kind: NodeFail, Node: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailEvents != 1 {
		t.Fatalf("scripted burst not applied: %d fail events", res.FailEvents)
	}
}

func TestHotspotRatesRoot(t *testing.T) {
	rates, err := HotspotRates(64, 1.5, 1, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	if math.Abs(sum-64) > 1e-6 {
		t.Errorf("hotspot rates sum %v, want 64", sum)
	}
}

// TestRadioParamsCSThreshold pins the carrier-sense sentinel semantics:
// DefaultRadioParams (NaN) derives beta * noise; any finite value — now
// including a literal 0 dBm — is used as given.
func TestRadioParamsCSThreshold(t *testing.T) {
	if !math.IsNaN(DefaultRadioParams().CSThresholdDBm) {
		t.Fatal("DefaultRadioParams should leave CSThresholdDBm explicitly unset (NaN)")
	}

	derived := flowTestMesh(t)
	p := derived.Network.Params
	if got, want := p.CSThresholdMW, p.NoiseMW*p.Beta; math.Abs(got-want)/want > 1e-12 {
		t.Errorf("NaN sentinel: CS threshold %v, want beta*noise %v", got, want)
	}

	radio := DefaultRadioParams()
	radio.CSThresholdDBm = 0 // a literal 0 dBm = 1 mW, previously unexpressible
	m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Seed: 1, Radio: radio})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Network.Params.CSThresholdMW; math.Abs(got-1) > 1e-12 {
		t.Errorf("explicit 0 dBm: CS threshold %v mW, want 1", got)
	}

	radio.CSThresholdDBm = -80
	m, err = NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Seed: 1, Radio: radio})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Network.Params.CSThresholdMW, 1e-8; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("explicit -80 dBm: CS threshold %v mW, want %v", got, want)
	}
}
