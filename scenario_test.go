package scream

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func testSpec() ScenarioSpec {
	return ScenarioSpec{
		Name:           "test",
		Topology:       TopologySpec{Kind: "grid", Rows: 4, Cols: 4, StepMeters: 30},
		Traffic:        TrafficSpec{Kind: "poisson", Load: 0.5},
		Scheduler:      "greedy",
		HorizonSec:     0.3,
		Seed:           7,
		FramesPerEpoch: 8,
		MaxService:     8,
	}
}

// TestScenarioGolden pins the on-disk spec format: the checked-in document
// must decode, validate and run.
func TestScenarioGolden(t *testing.T) {
	spec, err := LoadScenario("testdata/scenario_grid.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Delivered == 0 {
		t.Fatalf("golden scenario inert: offered %d delivered %d", res.Offered, res.Delivered)
	}
}

// TestScenarioRoundTrip checks Marshal/Unmarshal is the identity, including
// the pointer-valued knobs JSON makes awkward (nil-vs-zero CS threshold).
func TestScenarioRoundTrip(t *testing.T) {
	cs := 0.0
	spec := testSpec()
	spec.Topology.Gateways = []int{0, 15}
	spec.Topology.Radio = &RadioSpec{NumRadios: 2, CSThresholdDBm: &cs}
	spec.Traffic = TrafficSpec{Kind: "zipf", Load: 1.5, ZipfS: 1.2, ZipfMax: 16}
	spec.Dynamics = &DynamicsSpec{FailRate: 0.5, MeanDowntimeSec: 0.2, Mobility: "waypoint", SpeedMps: 5}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got ScenarioSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", got, spec)
	}
}

// TestScenarioStrictDecode: unknown fields anywhere in the document are
// rejected — a typoed knob must not silently run the default.
func TestScenarioStrictDecode(t *testing.T) {
	cases := []string{
		`{"horizon_secs": 1}`,
		`{"topology": {"kind": "grid", "rows": 4, "cols": 4, "step_meters": 30}}`,
		`{"traffic": {"kind": "poisson", "lod": 0.5}}`,
		`{"dynamics": {"failrate": 1}}`,
	}
	for _, doc := range cases {
		var spec ScenarioSpec
		if err := json.Unmarshal([]byte(doc), &spec); err == nil {
			t.Errorf("unknown field accepted: %s", doc)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []struct {
		name   string
		mutate func(*ScenarioSpec)
		want   string
	}{
		{"no topology kind", func(s *ScenarioSpec) { s.Topology.Kind = "" }, "topology.kind"},
		{"unknown topology", func(s *ScenarioSpec) { s.Topology.Kind = "torus" }, "torus"},
		{"no rows", func(s *ScenarioSpec) { s.Topology.Rows = 0 }, "rows"},
		{"no traffic kind", func(s *ScenarioSpec) { s.Traffic.Kind = "" }, "traffic.kind"},
		{"unknown traffic", func(s *ScenarioSpec) { s.Traffic.Kind = "fractal" }, "fractal"},
		{"both rates", func(s *ScenarioSpec) { s.Traffic.RatePps = 10 }, "not both"},
		{"no rate", func(s *ScenarioSpec) { s.Traffic.Load = 0 }, "load or rate_pps"},
		{"unknown scheduler", func(s *ScenarioSpec) { s.Scheduler = "astrology" }, "astrology"},
		{"pdd without p", func(s *ScenarioSpec) { s.Scheduler = "pdd" }, "pdd needs p"},
		{"no horizon", func(s *ScenarioSpec) { s.HorizonSec = 0 }, "horizon_sec"},
		{"bad mobility", func(s *ScenarioSpec) { s.Dynamics = &DynamicsSpec{Mobility: "teleport"} }, "teleport"},
	}
	for _, tc := range bad {
		spec := testSpec()
		tc.mutate(&spec)
		err := spec.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The unknown-scheduler error lists the valid names.
	spec := testSpec()
	spec.Scheduler = "astrology"
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "greedy") {
		t.Errorf("unknown-scheduler error should list valid names, got %v", err)
	}
}

// TestRunDeterministic: the same spec produces the identical result, and the
// epoch stream's final cumulative counters agree with it.
func TestRunDeterministic(t *testing.T) {
	spec := testSpec()
	var last EpochUpdate
	var epochs int
	a, err := RunWith(context.Background(), spec, RunOptions{OnEpoch: func(u EpochUpdate) {
		last = u
		epochs++
	}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec, different results:\n%+v\n%+v", a, b)
	}
	if epochs == 0 {
		t.Fatal("OnEpoch never fired")
	}
	if last.Offered != a.Offered || last.Delivered != a.Delivered || last.Dropped != a.Dropped {
		t.Fatalf("final epoch update %+v disagrees with result offered=%d delivered=%d dropped=%d",
			last, a.Offered, a.Delivered, a.Dropped)
	}
}

// TestRunCancel: a canceled context aborts the run with the context error.
func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testSpec()); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("canceled run returned %v", err)
	}
}

// TestScenarioClone: mutating a clone (slices and pointers included) never
// leaks into the original.
func TestScenarioClone(t *testing.T) {
	cs := -80.0
	spec := testSpec()
	spec.Topology.Gateways = []int{0, 3}
	spec.Topology.Radio = &RadioSpec{CSThresholdDBm: &cs}
	spec.Dynamics = &DynamicsSpec{FailRate: 1}
	c := spec.Clone()
	c.Topology.Gateways[0] = 99
	*c.Topology.Radio.CSThresholdDBm = 0
	c.Topology.Radio.NumRadios = 4
	c.Dynamics.FailRate = 9
	if spec.Topology.Gateways[0] != 0 || *spec.Topology.Radio.CSThresholdDBm != -80 ||
		spec.Topology.Radio.NumRadios != 0 || spec.Dynamics.FailRate != 1 {
		t.Fatalf("Clone shares memory with the original: %+v", spec)
	}
}
