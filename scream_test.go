package scream

import (
	"testing"
)

func testGridMesh(t testing.TB) *Mesh {
	t.Helper()
	m, err := NewGridMesh(GridMeshConfig{Rows: 5, Cols: 5, StepMeters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewGridMeshDefaults(t *testing.T) {
	m := testGridMesh(t)
	if m.NumNodes() != 25 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
	if len(m.Gateways()) != 4 {
		t.Errorf("default gateways = %v, want 4 quadrant gateways", m.Gateways())
	}
	if len(m.Links) != 21 {
		t.Errorf("links = %d, want 21", len(m.Links))
	}
	if m.TotalDemand() <= 0 {
		t.Error("positive demand expected")
	}
	if m.InterferenceDiameter() <= 0 {
		t.Error("positive interference diameter expected")
	}
	if m.NeighborDensity() <= 0 {
		t.Error("positive neighbor density expected")
	}
}

// TestNewGridMeshNumRadiosKeepsDefaultPhysics: setting only the radio count
// must not defeat the all-zero RadioParams default — the mesh gets the
// default propagation environment plus the requested radios.
func TestNewGridMeshNumRadiosKeepsDefaultPhysics(t *testing.T) {
	plain := testGridMesh(t)
	m, err := NewGridMesh(GridMeshConfig{
		Rows: 5, Cols: 5, StepMeters: 30, Seed: 1,
		Radio: RadioParams{NumRadios: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRadios() != 2 {
		t.Fatalf("NumRadios = %d, want 2", m.NumRadios())
	}
	if len(m.Links) != len(plain.Links) || m.TotalDemand() != plain.TotalDemand() {
		t.Fatalf("radio-only RadioParams changed the topology: %d links TD %d, want %d links TD %d",
			len(m.Links), m.TotalDemand(), len(plain.Links), plain.TotalDemand())
	}
	for i, l := range plain.Links {
		if m.Links[i] != l {
			t.Fatalf("link %d = %v, want %v", i, m.Links[i], l)
		}
	}
}

// TestMeshMultiChannelSchedule: the public multi-channel surface — shorter
// verified schedules through Mesh.GreedyScheduleChannels and the protocol
// path through ProtocolOptions.Channels.
func TestMeshMultiChannelSchedule(t *testing.T) {
	radio := DefaultRadioParams()
	radio.NumRadios = 2
	m, err := NewGridMesh(GridMeshConfig{Rows: 5, Cols: 5, StepMeters: 30, Seed: 1, Radio: radio})
	if err != nil {
		t.Fatal(err)
	}
	single, err := m.GreedySchedule(ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := m.GreedyScheduleChannels(4, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyChannels(multi, 4); err != nil {
		t.Fatal(err)
	}
	if multi.Length() >= single.Length() {
		t.Fatalf("4-channel greedy (%d slots) not shorter than single-channel (%d)", multi.Length(), single.Length())
	}
	res, err := m.RunFDD(ProtocolOptions{Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyChannels(res.Schedule, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunFDD(ProtocolOptions{Channels: 4, PacketLevel: true}); err == nil {
		t.Fatal("multi-channel packet-level run should be rejected")
	}
}

func TestNewGridMeshExplicitGateway(t *testing.T) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Gateways: []int{0}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Gateways(); len(g) != 1 || g[0] != 0 {
		t.Errorf("gateways = %v", g)
	}
	if len(m.Links) != 15 {
		t.Errorf("links = %d, want 15", len(m.Links))
	}
}

func TestNewUniformMesh(t *testing.T) {
	m, err := NewUniformMesh(UniformMeshConfig{
		N: 30, SideMeters: 200, MinTxDBm: 16, MaxTxDBm: 22, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 30 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
}

func TestGreedyVerifyImprovement(t *testing.T) {
	m := testGridMesh(t)
	s, err := m.GreedySchedule(ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(s); err != nil {
		t.Fatalf("greedy schedule invalid: %v", err)
	}
	if imp := m.Improvement(s); imp < 0 || imp >= 100 {
		t.Errorf("improvement = %v out of range", imp)
	}
}

func TestRunFDDEqualsGreedy(t *testing.T) {
	m := testGridMesh(t)
	res, err := m.RunFDD(ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res.Schedule); err != nil {
		t.Fatal(err)
	}
	g, err := m.GreedySchedule(ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Equal(g) {
		t.Error("public-API FDD must equal GreedyPhysical (Theorem 4)")
	}
}

func TestRunPDD(t *testing.T) {
	m := testGridMesh(t)
	res, err := m.RunPDD(0.5, ProtocolOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Error("positive execution time expected")
	}
}

func TestRunPacketLevel(t *testing.T) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Gateways: []int{0}, DemandHi: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := m.RunFDD(ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := m.RunFDD(ProtocolOptions{PacketLevel: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !ideal.Schedule.Equal(pkt.Schedule) {
		t.Error("packet-level FDD must match ideal FDD under provisioned skew")
	}
}

func TestMeshScream(t *testing.T) {
	m := testGridMesh(t)
	vars := make([]bool, m.NumNodes())
	vars[3] = true
	out, err := m.Scream(vars, ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if !v {
			t.Fatalf("node %d missed the scream", i)
		}
	}
	if _, err := m.Scream(vars[:2], ProtocolOptions{}); err == nil {
		t.Error("wrong vars length should fail")
	}
}

func TestMeshLeaderElect(t *testing.T) {
	m := testGridMesh(t)
	part := make([]bool, m.NumNodes())
	part[2], part[17] = true, true
	w, err := m.LeaderElect(part, ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w != 17 {
		t.Errorf("winner = %d, want 17", w)
	}
	if _, err := m.LeaderElect(part[:3], ProtocolOptions{}); err == nil {
		t.Error("wrong flags length should fail")
	}
}

func TestMoteFacade(t *testing.T) {
	cfg := DefaultMoteConfig(24)
	cfg.Screams = 50
	res, err := RunMoteExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPercent > 10 {
		t.Errorf("24-byte mote error = %.1f%%", res.ErrorPercent)
	}
}

func TestHelpers(t *testing.T) {
	if LinearLength([]int{2, 3}) != 5 {
		t.Error("LinearLength broken")
	}
	if ImprovementOverLinear(5, 10) != 50 {
		t.Error("ImprovementOverLinear broken")
	}
	if DefaultTiming().SMBytes != 15 {
		t.Error("DefaultTiming broken")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	if _, err := NewGridMesh(GridMeshConfig{Rows: 0, Cols: 3, StepMeters: 30}); err == nil {
		t.Error("bad grid config should fail")
	}
	if _, err := NewUniformMesh(UniformMeshConfig{N: 0, SideMeters: 100}); err == nil {
		t.Error("bad uniform config should fail")
	}
}

func TestBalancedRoutingMesh(t *testing.T) {
	plain, err := NewGridMesh(GridMeshConfig{Rows: 6, Cols: 6, StepMeters: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := NewGridMesh(GridMeshConfig{Rows: 6, Cols: 6, StepMeters: 30, Seed: 5, BalancedRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both must schedule and verify; depths must be min-hop in both.
	for _, m := range []*Mesh{plain, bal} {
		s, err := m.GreedySchedule(ByHeadIDDesc)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Verify(s); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < bal.NumNodes(); u++ {
		if bal.Forest.Depth(u) != plain.Forest.Depth(u) {
			t.Fatalf("balanced routing changed hop count at node %d: %d vs %d",
				u, bal.Forest.Depth(u), plain.Forest.Depth(u))
		}
	}
}
