// Quickstart: build a small planned mesh, run the distributed FDD scheduler,
// verify the schedule against the physical interference model, and show that
// it matches the centralized GreedyPhysical baseline (Theorem 4).
package main

import (
	"fmt"
	"log"

	"scream"
)

func main() {
	// A 5x5 backbone grid, 30 m spacing, four gateways placed by quadrant,
	// per-node demands drawn from [1, 10].
	mesh, err := scream.NewGridMesh(scream.GridMeshConfig{
		Rows: 5, Cols: 5, StepMeters: 30, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes, %d links, TD=%d, ID(G_S)=%d\n",
		mesh.NumNodes(), len(mesh.Links), mesh.TotalDemand(), mesh.InterferenceDiameter())

	// The SCREAM primitive: node 7 screams, everyone learns the OR.
	vars := make([]bool, mesh.NumNodes())
	vars[7] = true
	out, err := mesh.Scream(vars, scream.ProtocolOptions{})
	if err != nil {
		log.Fatal(err)
	}
	all := true
	for _, v := range out {
		all = all && v
	}
	fmt.Printf("SCREAM: node 7 screamed, all %d nodes heard it: %v\n", mesh.NumNodes(), all)

	// Run the fully deterministic distributed scheduler.
	res, err := mesh.RunFDD(scream.ProtocolOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := mesh.Verify(res.Schedule); err != nil {
		log.Fatalf("schedule failed verification: %v", err)
	}
	fmt.Printf("FDD: %d slots (%.1f%% better than serialized), computed in %.3fs of protocol time\n",
		res.Schedule.Length(), mesh.Improvement(res.Schedule), res.ExecTime.Seconds())

	// Theorem 4: FDD equals the centralized greedy.
	greedy, err := mesh.GreedySchedule(scream.ByHeadIDDesc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 4 check: FDD schedule == centralized GreedyPhysical: %v\n",
		res.Schedule.Equal(greedy))

	// Print the first few slots.
	for i := 0; i < res.Schedule.Length() && i < 3; i++ {
		fmt.Printf("  slot %d: %v\n", i, res.Schedule.Slot(i))
	}
}
