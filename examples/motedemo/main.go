// Motedemo reproduces the paper's Section V hardware experiment in
// simulation: the SCREAM primitive on Mica2-class motes. An initiator
// screams every 100 ms; six relays in a clique re-scream on detection (their
// transmissions deliberately collide at the monitor); the monitor detects
// screams from a 3-sample moving average of RSSI. The demo sweeps the SCREAM
// size and prints the detection error (Figure 4) plus an RSSI trace excerpt
// (Figure 5).
package main

import (
	"fmt"
	"log"
	"strings"

	"scream"
)

func main() {
	fmt.Println("SCREAM-on-motes detection experiment (Section V)")
	fmt.Println("=================================================")
	fmt.Println("8 motes: 1 initiator (2 hops from monitor), 6 relays + monitor in a clique")
	fmt.Println()

	fmt.Printf("%-18s %-12s %s\n", "SCREAM size", "detections", "interval error")
	for _, bytes := range []int{2, 4, 6, 8, 10, 15, 20, 24, 32} {
		cfg := scream.DefaultMoteConfig(bytes)
		cfg.Screams = 400 // demo-sized run; the paper uses 2000
		res, err := scream.RunMoteExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(res.ErrorPercent/2))
		fmt.Printf("%4d bytes %18d %9.1f%%  %s\n", bytes, res.Detections, res.ErrorPercent, bar)
	}

	fmt.Println()
	fmt.Println("RSSI moving average, 24-byte screams (first ~0.6 s; threshold -60 dBm):")
	cfg := scream.DefaultMoteConfig(24)
	cfg.Screams = 8
	res, err := scream.RunMoteExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Render the trace as a tiny vertical ASCII chart: one row per ~4 samples.
	for i := 0; i < len(res.Trace); i += 4 {
		p := res.Trace[i]
		col := int((p.DBm + 85) * 1.2)
		if col < 0 {
			col = 0
		}
		if col > 60 {
			col = 60
		}
		marker := strings.Repeat(" ", col) + "*"
		thr := int((-60 + 85) * 1.2)
		line := []byte(fmt.Sprintf("%-62s", marker))
		if thr < len(line) && line[thr] == ' ' {
			line[thr] = '|'
		}
		fmt.Printf("%7.1f ms %s %6.1f dBm\n", float64(p.At)/1e6, string(line), p.DBm)
	}
	fmt.Println("                                        ('|' marks the -60 dBm threshold)")
}
