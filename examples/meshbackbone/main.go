// Meshbackbone reproduces the paper's headline scenario (Section VI-A): a
// 64-node planned wireless backbone with 4 Internet gateways and per-node
// client demand, scheduled three ways — serialized (what CSMA-style MACs
// degenerate to under load), the centralized GreedyPhysical, and the
// distributed FDD/PDD protocols — and compares schedule lengths and protocol
// execution times.
package main

import (
	"fmt"
	"log"

	"scream"
)

func main() {
	// 64 routers, 35 m apart (a city-block deployment), demands U[1,10].
	mesh, err := scream.NewGridMesh(scream.GridMeshConfig{
		Rows: 8, Cols: 8, StepMeters: 35, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SCREAM mesh backbone scheduling demo")
	fmt.Println("=====================================")
	fmt.Printf("backbone:  %d nodes, gateways %v\n", mesh.NumNodes(), mesh.Gateways())
	fmt.Printf("traffic:   %d links, aggregated demand TD = %d slots serialized\n",
		len(mesh.Links), mesh.TotalDemand())
	fmt.Printf("radio:     interference diameter %d, neighbor density %.1f\n\n",
		mesh.InterferenceDiameter(), mesh.NeighborDensity())

	fmt.Printf("%-28s %8s %14s %12s\n", "scheduler", "slots", "improvement", "exec time")
	fmt.Printf("%-28s %8d %13.1f%% %12s\n", "serialized (linear)", mesh.TotalDemand(), 0.0, "-")

	greedy, err := mesh.GreedySchedule(scream.ByHeadIDDesc)
	if err != nil {
		log.Fatal(err)
	}
	if err := mesh.Verify(greedy); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8d %13.1f%% %12s\n", "GreedyPhysical (central)",
		greedy.Length(), mesh.Improvement(greedy), "-")

	fdd, err := mesh.RunFDD(scream.ProtocolOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := mesh.Verify(fdd.Schedule); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8d %13.1f%% %11.3fs\n", "FDD (distributed)",
		fdd.Schedule.Length(), mesh.Improvement(fdd.Schedule), fdd.ExecTime.Seconds())

	for _, p := range []float64{0.2, 0.6, 0.8} {
		pdd, err := mesh.RunPDD(p, scream.ProtocolOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		if err := mesh.Verify(pdd.Schedule); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8d %13.1f%% %11.3fs\n", fmt.Sprintf("PDD p=%.1f (distributed)", p),
			pdd.Schedule.Length(), mesh.Improvement(pdd.Schedule), pdd.ExecTime.Seconds())
	}

	fmt.Println()
	if fdd.Schedule.Equal(greedy) {
		fmt.Println("FDD reproduced the centralized schedule exactly (Theorem 4), with no")
		fmt.Println("central coordinator: every decision was made through SCREAMs, leader")
		fmt.Printf("elections (%d) and two-way handshakes (%d steps).\n", fdd.Elections, fdd.Steps)
	}
}
