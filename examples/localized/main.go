// Localized demonstrates Theorem 1 constructively: no localized algorithm —
// one that decides whether a link can join a slot from its k-hop
// neighborhood only — can guarantee feasible schedules under the physical
// interference model. We build a long line network with short links spaced
// so that every link is feasible with everything a k-hop scheduler can see,
// yet the accumulated interference of the far-away links it cannot see
// pushes receivers below the SINR threshold. The global verifier catches
// what the localized scheduler cannot.
package main

import (
	"fmt"
	"log"

	"scream"
)

func main() {
	fmt.Println("Theorem 1: impossibility of localized distributed scheduling")
	fmt.Println("=============================================================")

	const (
		nodes = 140
		step  = 25.0 // meters between adjacent nodes
		sep   = 5    // one link every sep nodes
	)
	found := false
	for _, slack := range []float64{1.02, 1.03, 1.05, 1.08} {
		mesh, err := scream.NewLineMesh(scream.LineMeshConfig{
			N: nodes, StepMeters: step, RangeSlack: slack, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		// One short link every `sep` nodes, all with unit demand.
		var links []scream.Link
		for i := 0; i+1 < nodes; i += sep {
			links = append(links, scream.Link{From: i, To: i + 1})
		}
		demands := make([]int, len(links))
		for i := range demands {
			demands[i] = 1
		}
		k := sep - 2 // the scheduler sees strictly less than the link spacing

		local, err := mesh.LocalizedGreedyFor(links, demands, k, scream.ByHeadIDDesc)
		if err != nil {
			log.Fatal(err)
		}
		global, err := mesh.GreedyScheduleFor(links, demands, scream.ByHeadIDDesc)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\nrange slack %.2f: %d links on a %d-node line, k = %d hops\n",
			slack, len(links), nodes, k)
		fmt.Printf("  localized greedy: %2d slots — ", local.Length())
		if err := mesh.VerifyFor(links, demands, local); err != nil {
			fmt.Printf("INFEASIBLE: %v\n", err)
			found = true
		} else {
			fmt.Println("feasible (this slack has enough SINR margin)")
		}
		fmt.Printf("  global greedy:    %2d slots — ", global.Length())
		if err := mesh.VerifyFor(links, demands, global); err != nil {
			log.Fatalf("global greedy must never be infeasible: %v", err)
		}
		fmt.Println("feasible (always)")
	}

	fmt.Println()
	if found {
		fmt.Println("At tight SINR margins the k-hop scheduler packed links that are pairwise")
		fmt.Println("fine locally but jointly infeasible: exactly the Theorem 1 situation, and")
		fmt.Println("why SCREAM is a *global* primitive rather than a localized gossip.")
	} else {
		fmt.Println("unexpected: no slack value exhibited the failure (constants need retuning)")
	}
}
