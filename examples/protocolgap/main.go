// Protocolgap examines the paper's motivating contrast (Section I) between
// the protocol interference model — the pairwise exclusion-region
// abstraction CSMA/CA-style MACs enforce — and the physical (SINR) model the
// paper schedules with. The same backbone workload is scheduled under both
// models across radio powers, showing the two failure modes of the protocol
// abstraction:
//
//   - it IGNORES AGGREGATION: at moderate power its schedules are shorter on
//     paper but a large fraction of their slots violate SINR — they would
//     simply lose packets on air;
//   - it OVER-EXCLUDES pairwise: at high power (wide carrier-sense range) it
//     serializes transmissions the SINR model proves compatible.
//
// Either way, correct-and-efficient scheduling needs the physical model —
// and Theorem 1 says that, in turn, needs a global primitive like SCREAM.
package main

import (
	"fmt"
	"log"

	"scream"
)

func main() {
	fmt.Println("Physical vs protocol interference model")
	fmt.Println("========================================")
	fmt.Println("(same 8x8 backbone and demands; TD = serialized length)")
	fmt.Println()
	fmt.Printf("%-9s %8s | %9s %16s | %9s %10s\n",
		"TX power", "TD", "protocol", "SINR-violating", "physical", "verified")

	for _, power := range []float64{14, 17, 20, 23} {
		mesh, err := scream.NewGridMesh(scream.GridMeshConfig{
			Rows: 8, Cols: 8, StepMeters: 30, TxPowerDBm: power, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		proto, err := mesh.GreedyProtocolSchedule(scream.ByHeadIDDesc)
		if err != nil {
			log.Fatal(err)
		}
		bad := mesh.CountInfeasibleSlots(proto)
		physical, err := mesh.GreedySchedule(scream.ByHeadIDDesc)
		if err != nil {
			log.Fatal(err)
		}
		verified := "yes"
		if err := mesh.Verify(physical); err != nil {
			verified = "NO"
		}
		fmt.Printf("%6.0fdBm %8d | %6d sl %9d (%3.0f%%) | %6d sl %10s\n",
			power, mesh.TotalDemand(),
			proto.Length(), bad, 100*float64(bad)/float64(proto.Length()),
			physical.Length(), verified)
	}

	fmt.Println()
	fmt.Println("At 14-20 dBm the protocol model packs tighter slots than SINR allows —")
	fmt.Println("those slots would fail on air. At 23 dBm its carrier-sense exclusion is")
	fmt.Println("so wide it falls back to full serialization (TD slots) while the physical")
	fmt.Println("model still finds verified spatial reuse. The physical schedules are the")
	fmt.Println("only ones that are simultaneously correct and shorter than serialized.")
}
