// Unplanned reproduces the paper's second evaluation scenario (Figure 7): an
// unplanned mesh — 64 routers dropped uniformly at random, each with a
// different transmit power (as real deployments end up after years of organic
// growth) — scheduled by the distributed protocols over the packet-level
// radio backend with skewed clocks, demonstrating that the approach does not
// depend on planned placement or homogeneous hardware.
package main

import (
	"fmt"
	"log"

	"scream"
)

func main() {
	mesh, err := scream.NewUniformMesh(scream.UniformMeshConfig{
		N:          64,
		SideMeters: 260,
		MinTxDBm:   4, // heterogeneous radios spanning 6 dB
		MaxTxDBm:   10,
		Seed:       19,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Unplanned heterogeneous mesh (Figure 7 scenario)")
	fmt.Println("=================================================")
	fmt.Printf("%d nodes in %.0fm x %.0fm, gateways %v\n",
		mesh.NumNodes(), mesh.Network.Region.Width(), mesh.Network.Region.Height(), mesh.Gateways())
	fmt.Printf("TD = %d, ID(G_S) = %d, rho = %.1f\n\n",
		mesh.TotalDemand(), mesh.InterferenceDiameter(), mesh.NeighborDensity())

	greedy, err := mesh.GreedySchedule(scream.ByHeadIDDesc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized GreedyPhysical: %d slots (%.1f%% over linear)\n",
		greedy.Length(), mesh.Improvement(greedy))

	// Ideal backend first.
	fdd, err := mesh.RunFDD(scream.ProtocolOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FDD (ideal backend):        %d slots (%.1f%% over linear), exec %.3fs\n",
		fdd.Schedule.Length(), mesh.Improvement(fdd.Schedule), fdd.ExecTime.Seconds())

	// Then the packet-level radio backend: every SCREAM slot and handshake
	// is simulated with per-node clock offsets and energy detection.
	pkt, err := mesh.RunFDD(scream.ProtocolOptions{PacketLevel: true, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := mesh.Verify(pkt.Schedule); err != nil {
		log.Fatalf("packet-level schedule failed verification: %v", err)
	}
	fmt.Printf("FDD (packet-level radio):   %d slots (%.1f%% over linear), exec %.3fs\n",
		pkt.Schedule.Length(), mesh.Improvement(pkt.Schedule), pkt.ExecTime.Seconds())

	pdd, err := mesh.RunPDD(0.8, scream.ProtocolOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PDD p=0.8 (ideal backend):  %d slots (%.1f%% over linear), exec %.3fs\n\n",
		pdd.Schedule.Length(), mesh.Improvement(pdd.Schedule), pdd.ExecTime.Seconds())

	same := fdd.Schedule.Equal(pkt.Schedule) && fdd.Schedule.Equal(greedy)
	fmt.Printf("ideal FDD == packet-level FDD == centralized greedy: %v\n", same)
}
