// Package scream is a Go implementation of the SCREAM approach for
// efficient distributed scheduling with physical (SINR) interference in
// wireless mesh networks (Brar, Blough, Santi; ICDCS 2008).
//
// The package provides:
//
//   - Mesh construction: planned grids, unplanned uniform deployments, and
//     line topologies with log-distance/log-normal propagation, fixed or
//     heterogeneous transmit power, gateway-rooted routing forests and
//     aggregated traffic demands.
//   - The SCREAM primitive (a collision-resilient, carrier-sensing flood
//     that computes a network-wide OR in K >= ID(G_S) slots), leader
//     election built on it, and the two distributed STDMA schedulers of the
//     paper: PDD (randomized active selection) and FDD (fully
//     deterministic), with proven emulation of the centralized
//     GreedyPhysical algorithm (Theorem 4).
//   - The centralized GreedyPhysical baseline and a schedule verifier for
//     the physical interference model with data and ACK sub-slots.
//   - Two execution backends: an ideal SINR backend and a packet-level
//     radio backend with per-node clock skew and energy-detect carrier
//     sensing.
//   - The full benchmark harness regenerating every figure of the paper's
//     evaluation (Figures 4-9) plus design ablations, and the Mica2 mote
//     experiment of Section V.
//
// See the examples directory for runnable end-to-end programs and
// EXPERIMENTS.md for paper-vs-measured results.
package scream

import (
	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/exp"
	"scream/internal/mote"
	"scream/internal/phys"
	"scream/internal/sched"
	"scream/internal/stats"
)

// Aliases re-exporting the library's central types so that downstream users
// need only import the root package.
type (
	// Link is a directed data transmission (From sends, To ACKs).
	Link = phys.Link
	// ChannelSet is a set of orthogonal frequency channels over one
	// deployment: interference accumulates per channel only. See
	// Mesh.ChannelSet and the multi-channel schedulers.
	ChannelSet = phys.ChannelSet
	// Placement is one link scheduled on one channel of a slot.
	Placement = phys.Placement
	// Schedule is an STDMA schedule: slots of concurrent links.
	Schedule = sched.Schedule
	// Ordering selects the edge ordering of GreedyPhysical.
	Ordering = sched.Ordering
	// Timing converts slot payloads into slot durations.
	Timing = core.Timing
	// Result is a protocol run's outcome (schedule + cost accounting).
	Result = core.Result
	// Variant selects the distributed protocol (PDD or FDD).
	Variant = core.Variant
	// Backend executes protocol primitives (ideal or packet-level).
	Backend = core.Backend
	// SimTime is simulated time in nanoseconds.
	SimTime = des.Time
	// MoteConfig parameterizes the Mica2 SCREAM experiment (Section V).
	MoteConfig = mote.Config
	// MoteResult is the mote experiment outcome.
	MoteResult = mote.Result
	// Figure is a set of named measurement series with axes.
	Figure = stats.Figure
	// ExperimentOptions scales the figure-regeneration harness: Seeds per
	// point, Quick sweeps, and Workers for the concurrent cell-grid
	// engine (results are identical for any worker count).
	ExperimentOptions = exp.Options
)

// Protocol variants.
const (
	PDD = core.PDD
	FDD = core.FDD
)

// GreedyPhysical edge orderings.
const (
	// ByHeadIDDesc is the ordering FDD emulates (Theorem 4).
	ByHeadIDDesc = sched.ByHeadIDDesc
	// ByDemandDesc schedules heavier edges first.
	ByDemandDesc = sched.ByDemandDesc
	// ByLengthDesc schedules longer links first.
	ByLengthDesc = sched.ByLengthDesc
)

// Simulated-time units.
const (
	Nanosecond  = des.Nanosecond
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
)

// DefaultTiming returns the evaluation's slot timing model: 15-byte SCREAMs
// at 54 Mb/s, 1000-byte data packets, 14-byte ACKs, 1 us clock skew bound.
func DefaultTiming() Timing { return core.DefaultTiming() }

// DefaultMoteConfig returns the Section V mote-experiment setup for a given
// SCREAM size in bytes.
func DefaultMoteConfig(smBytes int) MoteConfig { return mote.DefaultConfig(smBytes) }

// RunMoteExperiment executes the Mica2 SCREAM-detection experiment.
func RunMoteExperiment(cfg MoteConfig) (*MoteResult, error) { return mote.Run(cfg) }

// LinearLength returns the serialized schedule length for the given demands.
func LinearLength(demands []int) int { return sched.LinearLength(demands) }

// ImprovementOverLinear returns 100*(TD-L)/TD, the paper's quality metric.
func ImprovementOverLinear(length, totalDemand int) float64 {
	return sched.ImprovementOverLinear(length, totalDemand)
}
